//! An operator's playbook: choosing a strategy under overload management.
//!
//! §7.3's punchline is that the best PSP strategy depends on *who aborts
//! tardy tasks*: GF wins when nothing is aborted, but is inapplicable if
//! local schedulers abort on (virtual) deadlines — every GF subtask's
//! deadline is already in the past when it arrives. This example measures
//! that whole decision matrix, plus EQF's robustness to bad execution-time
//! estimates (§8).
//!
//! Run with: `cargo run --release --example overload_playbook`

use sda::prelude::*;

fn psp(psp: PspStrategy) -> SdaStrategy {
    SdaStrategy {
        ssp: SspStrategy::Ud,
        psp,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let strategies = [
        ("UD", psp(PspStrategy::Ud)),
        ("DIV-1", psp(PspStrategy::div(1.0))),
        ("GF", psp(PspStrategy::gf())),
    ];
    let modes = [
        ("no abortion", AbortPolicy::None),
        ("PM abortion", AbortPolicy::ProcessManager),
        (
            "local abortion",
            AbortPolicy::LocalScheduler {
                resubmit: ResubmitPolicy::OnceWithRealDeadline,
            },
        ),
    ];

    println!("MD_global at load 0.7, by strategy x overload management:\n");
    print!("  {:<8}", "");
    for (mode, _) in &modes {
        print!(" {mode:>16}");
    }
    println!();
    for (label, strategy) in &strategies {
        print!("  {label:<8}");
        for (_, abort) in &modes {
            let cfg = SimConfig {
                abort: *abort,
                load: 0.7,
                duration: 100_000.0,
                ..SimConfig::baseline()
            }
            .with_strategy(*strategy);
            let multi = Runner::new(cfg)
                .seed(33)
                .stop(StopRule::FixedReps(2))
                .execute()?;
            print!(" {:>15.1}%", 100.0 * multi.md_global().mean);
        }
        println!();
    }
    println!(
        "\nReading the matrix (the paper's §7.3 guidance):\n\
         - no abortion:    GF holds the edge;\n\
         - PM abortion:    DIV-1 and GF converge — pick DIV-1 for fairness\n\
                           across task sizes;\n\
         - local abortion: aggressive virtual deadlines backfire (aborted\n\
                           subtasks burn their slack on a wasted first try);\n\
                           GF degenerates completely."
    );

    // EQF estimation-error robustness (§8): the serial-parallel workload
    // with predictions off by up to a factor of 2 and 4.
    println!("\nEQF-DIV1 on the 5-stage trading workload vs pex error (load 0.5):\n");
    for (label, estimation) in [
        ("exact pex", EstimationModel::Exact),
        ("off by <=2x", EstimationModel::uniform_factor(2.0)),
        ("off by <=4x", EstimationModel::uniform_factor(4.0)),
    ] {
        let cfg = SimConfig {
            estimation,
            duration: 100_000.0,
            ..SimConfig::section8()
        }
        .with_strategy(SdaStrategy::eqf_div1());
        let multi = Runner::new(cfg)
            .seed(34)
            .stop(StopRule::FixedReps(2))
            .execute()?;
        println!(
            "  {:<12} MD_global = {:>5.1}%",
            label,
            100.0 * multi.md_global().mean
        );
    }
    println!("\nEQF only needs *relative* stage lengths, so 2x noise barely hurts (§8).");
    Ok(())
}
