//! The trace-determinism contract, end to end: a [`sda::Runner`] with a
//! JSONL sink attached produces **byte-identical** trace output for a
//! fixed seed at any `jobs` level, because the sink observes replication
//! 0 only and replication seeds are derived, not scheduled.

use std::io::Write;
use std::sync::{Arc, Mutex};

use sda::prelude::*;
use sda::sim::parse_jsonl;
use sda::sim::trace::{JsonlSink, SharedSink};

/// A writer handing every byte to a shared buffer, so the test can read
/// what the sink wrote after the runner consumed it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_jsonl(jobs: usize) -> String {
    let cfg = SimConfig {
        duration: 1_000.0,
        warmup: 50.0,
        ..SimConfig::baseline()
    };
    let buf = SharedBuf::default();
    let sink = SharedSink::new(Box::new(JsonlSink::new(buf.clone())));
    Runner::new(cfg)
        .seed(77)
        .jobs(jobs)
        .stop(StopRule::FixedReps(4))
        .trace(sink)
        .execute()
        .expect("baseline validates");
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes).expect("utf-8 jsonl")
}

#[test]
fn jsonl_trace_is_byte_identical_across_jobs() {
    let seq = traced_jsonl(1);
    let par = traced_jsonl(4);
    assert!(!seq.is_empty(), "a 1000-time-unit run traces events");
    assert_eq!(seq, par, "trace bytes must not depend on the jobs level");

    // And the bytes are a well-formed structured trace: every line
    // round-trips through the parser.
    let records = parse_jsonl(&seq);
    assert_eq!(records.len(), seq.lines().count());
    assert!(records.windows(2).all(|w| w[0].time <= w[1].time));
}
