//! Integration tests of the public `Runner` API through the `sda`
//! facade: the builder, the determinism guarantee across `jobs`, the
//! CI-driven stopping rule, and the documented `stats.json` schema.

use sda::prelude::*;

fn quick() -> SimConfig {
    SimConfig {
        duration: 3_000.0,
        warmup: 100.0,
        ..SimConfig::baseline()
    }
}

#[test]
fn facade_exposes_runner_at_the_root() {
    // `sda::Runner` (not just the prelude) — the documented entry point.
    let multi = sda::Runner::new(quick())
        .seed(9)
        .stop(sda::StopRule::FixedReps(2))
        .execute()
        .expect("baseline validates");
    assert_eq!(multi.runs().len(), 2);
}

#[test]
fn runner_is_deterministic_across_jobs_via_facade() {
    let run = |jobs| {
        Runner::new(quick())
            .seed(31)
            .jobs(jobs)
            .stop(StopRule::FixedReps(6))
            .execute()
            .expect("baseline validates")
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.runs().len(), par.runs().len());
    for (a, b) in seq.runs().iter().zip(par.runs()) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(
            a.metrics.md_global().to_bits(),
            b.metrics.md_global().to_bits(),
            "jobs must not change results (seed {})",
            a.seed
        );
    }
}

#[test]
fn ci_width_rule_respects_min_and_max_reps() {
    // A loose target converges at the floor; a hopeless target stops
    // at the cap.
    let loose = Runner::new(quick())
        .seed(11)
        .stop(StopRule::CiWidth(100.0))
        .min_reps(3)
        .max_reps(10)
        .execute()
        .expect("baseline validates");
    assert_eq!(loose.runs().len(), 3);

    let hopeless = Runner::new(quick())
        .seed(11)
        .stop(StopRule::CiWidth(1e-12))
        .min_reps(2)
        .max_reps(4)
        .execute()
        .expect("baseline validates");
    assert_eq!(hopeless.runs().len(), 4);
}

/// Pulls `"field": <token>` out of a flat JSON object without a JSON
/// parser (the workspace is dependency-free by design).
fn field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\":");
    let start = json.find(&key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

#[test]
fn stats_json_matches_the_documented_schema() {
    let multi = Runner::new(quick())
        .seed(17)
        .stop(StopRule::FixedReps(4))
        .execute()
        .expect("baseline validates");
    let json = multi.stats().to_json();

    // Top-level: one object per tracked metric.
    for metric in [
        "md_local",
        "md_subtask",
        "md_global",
        "missed_work",
        "utilization",
    ] {
        let obj_start = json
            .find(&format!("\"{metric}\":"))
            .unwrap_or_else(|| panic!("metric {metric} missing from stats.json"));
        let obj = &json[obj_start..];
        // Every documented field is present in each metric object.
        for f in [
            "mean",
            "stddev",
            "stderr",
            "min",
            "max",
            "samples",
            "confidence_interval_95",
            "ci_width_ratio",
        ] {
            assert!(
                obj.contains(&format!("\"{f}\":")),
                "field {f} missing for metric {metric}"
            );
        }
    }

    // Spot-check values: samples is the replication count, the CI is a
    // two-element array bracketing the mean.
    let md = &json[json.find("\"md_global\":").unwrap()..];
    assert_eq!(field(md, "samples"), Some("4"));
    let mean: f64 = field(md, "mean").unwrap().parse().unwrap();
    let ci_start =
        md.find("\"confidence_interval_95\": [").unwrap() + "\"confidence_interval_95\": [".len();
    let ci = &md[ci_start..ci_start + md[ci_start..].find(']').unwrap()];
    let (lo, hi) = ci.split_once(',').expect("two-element CI array");
    let lo: f64 = lo.trim().parse().unwrap();
    let hi: f64 = hi.trim().parse().unwrap();
    assert!(
        lo <= mean && mean <= hi,
        "CI [{lo}, {hi}] must bracket {mean}"
    );
}

#[test]
fn explicit_seed_lists_agree_with_derived_seeds() {
    // `with_seeds(seeds(b, n))` must reproduce the derived-seed schedule
    // exactly — the common-random-numbers workflow is just the default
    // spelled out.
    let explicit = Runner::new(quick())
        .with_seeds(seeds(23, 3))
        .stop(StopRule::FixedReps(3))
        .execute()
        .expect("baseline validates");
    let derived = Runner::new(quick())
        .seed(23)
        .stop(StopRule::FixedReps(3))
        .execute()
        .expect("baseline validates");
    assert_eq!(explicit.runs().len(), derived.runs().len());
    for (a, b) in explicit.runs().iter().zip(derived.runs()) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(
            a.metrics.md_global().to_bits(),
            b.metrics.md_global().to_bits()
        );
    }
}

#[test]
fn stats_json_carries_per_node_statistics() {
    let multi = Runner::new(quick())
        .seed(41)
        .stop(StopRule::FixedReps(2))
        .execute()
        .expect("baseline validates");
    let json = multi.stats().to_json();
    assert!(json.contains("\"per_node\":"), "per_node array missing");
    for f in ["\"node\":", "\"utilization\":", "\"mean_queue_len\":"] {
        assert!(json.contains(f), "per-node field {f} missing");
    }
    assert_eq!(multi.stats().per_node().len(), quick().nodes);
}
