//! Qualitative figure-shape assertions: every claim the paper makes about
//! who wins where, asserted against quick-scale reproductions of the
//! actual figures. (Absolute values are compared in `EXPERIMENTS.md` and
//! the `checkpoints` binary; these tests pin down the *shape*.)

use sda::experiments::figures;
use sda::experiments::Scale;

#[test]
fn fig5_ud_amplifies_global_misses_across_the_sweep() {
    let fig = figures::fig5(Scale::Quick);
    let s = &fig.series[0];
    for p in &s.points {
        if p.load >= 0.3 {
            assert!(
                p.md_global.mean > 1.5 * p.md_local.mean,
                "load {}: global {} local {}",
                p.load,
                p.md_global.mean,
                p.md_local.mean
            );
        }
    }
    // Monotone-ish growth with load: compare endpoints.
    assert!(s.points.last().unwrap().md_global.mean > s.points[2].md_global.mean);
}

#[test]
fn fig6_div1_and_div2_are_close_and_both_beat_ud() {
    let fig = figures::fig6(Scale::Quick);
    let (ud, div1, div2) = (&fig.series[0], &fig.series[1], &fig.series[2]);
    for load in [0.5, 0.7] {
        let ud_g = ud.at_load(load).unwrap().md_global.mean;
        let d1_g = div1.at_load(load).unwrap().md_global.mean;
        let d2_g = div2.at_load(load).unwrap().md_global.mean;
        assert!(d1_g < ud_g, "DIV-1 beats UD at load {load}");
        assert!(d2_g < ud_g, "DIV-2 beats UD at load {load}");
        // "The difference between their performance is hardly noticeable"
        // — within a few points of each other at moderate load.
        assert!(
            (d1_g - d2_g).abs() < 0.05,
            "DIV-1 {d1_g} vs DIV-2 {d2_g} at load {load}"
        );
    }
    // DIV raises the local miss rate relative to UD (the price paid).
    let ud_l = ud.at_load(0.5).unwrap().md_local.mean;
    let d1_l = div1.at_load(0.5).unwrap().md_local.mean;
    assert!(d1_l > ud_l);
}

#[test]
fn fig7_gf_wins_and_locals_pay_no_more_than_under_div1() {
    let fig = figures::fig7(Scale::Quick);
    let (div1, gf) = (&fig.series[1], &fig.series[2]);
    // "both of them miss approximately the same number of local tasks
    // while GF misses significantly fewer global tasks ... particularly
    // under high load".
    for load in [0.6, 0.8] {
        let d = div1.at_load(load).unwrap();
        let g = gf.at_load(load).unwrap();
        assert!(
            g.md_global.mean < d.md_global.mean,
            "GF globals at load {load}"
        );
        assert!(
            (g.md_local.mean - d.md_local.mean).abs() < 0.04,
            "local rates comparable at load {load}: GF {} DIV-1 {}",
            g.md_local.mean,
            d.md_local.mean
        );
    }
}

#[test]
fn fig9_curves_flatten_as_x_grows_and_n2_stabilizes_by_x1() {
    let fig = figures::fig9(Scale::Quick);
    for series in &fig.series {
        let at = |x: f64| series.at_load(x).unwrap().md_global.mean;
        // Large-x plateau: x = 4 vs x = 8 differ by little.
        assert!(
            (at(4.0) - at(8.0)).abs() < 0.03,
            "{}: {} vs {}",
            series.label,
            at(4.0),
            at(8.0)
        );
        // x = 1 is already close to the plateau (the paper's "x = 1 is
        // usually adequate").
        assert!(
            (at(1.0) - at(8.0)).abs() < 0.05,
            "{}: x=1 {} vs x=8 {}",
            series.label,
            at(1.0),
            at(8.0)
        );
        // Tiny x under-boosts: x = 0.25 misses more globals than x = 1.
        assert!(at(0.25) > at(1.0), "{}", series.label);
    }
}

#[test]
fn fig10_gf_equals_ud_with_no_locals_and_gains_grow_with_frac_local() {
    let fig = figures::fig10(Scale::Quick);
    let (ud, div1, gf) = (&fig.series[0], &fig.series[1], &fig.series[2]);
    // frac_local = 0: "GF will perform exactly the same as UD because the
    // deadlines of all subtasks are reduced by exactly the same amount".
    let ud0 = ud.at_load(0.0).unwrap().md_global.mean;
    let gf0 = gf.at_load(0.0).unwrap().md_global.mean;
    assert!(
        (ud0 - gf0).abs() < 1e-12,
        "GF must equal UD with no locals: {ud0} vs {gf0}"
    );
    // Effectiveness (UD minus strategy) grows with frac_local.
    for series in [div1, gf] {
        let gain = |frac: f64| {
            ud.at_load(frac).unwrap().md_global.mean - series.at_load(frac).unwrap().md_global.mean
        };
        assert!(
            gain(0.9) > gain(0.3),
            "{}: gain at 0.9 {} vs at 0.3 {}",
            series.label,
            gain(0.9),
            gain(0.3)
        );
    }
}

#[test]
fn fig11_abortion_lowers_rates_and_div1_stays_effective() {
    let with_abort = figures::fig11(Scale::Quick);
    let without = figures::fig7(Scale::Quick);
    // Abortion reduces miss rates at high load (resources not wasted on
    // tardy tasks).
    let a = with_abort.series[0].at_load(0.8).unwrap();
    let n = without.series[0].at_load(0.8).unwrap();
    assert!(a.md_global.mean < n.md_global.mean);
    assert!(a.md_local.mean < n.md_local.mean);
    // DIV-1 still beats UD under abortion.
    let ud = with_abort.series[0].at_load(0.5).unwrap().md_global.mean;
    let div1 = with_abort.series[1].at_load(0.5).unwrap().md_global.mean;
    assert!(div1 < ud);
    // GF ≈ DIV-1 under PM abortion (the paper omits GF's curves because
    // they overlap DIV-1's).
    let gf = with_abort.series[2].at_load(0.5).unwrap().md_global.mean;
    assert!((gf - div1).abs() < 0.03, "GF {gf} vs DIV-1 {div1}");
}

#[test]
fn fig12_div1_equalizes_and_gf_reduces_further() {
    let fig = figures::fig12(Scale::Quick);
    let (ud, div1, gf) = (&fig.series[0], &fig.series[1], &fig.series[2]);
    // Under UD the n=6 class misses several times more than locals
    // ("about 4 times as likely").
    let ud_local = ud.points[0].md_global.mean;
    let ud_n6 = ud.points[5].md_global.mean;
    assert!(ud_n6 > 2.5 * ud_local, "{ud_n6} vs local {ud_local}");
    // DIV-1 keeps all global classes at roughly the same level: the
    // spread across n = 2..6 shrinks versus UD.
    let spread = |s: &sda::experiments::figures::Series| {
        let rates: Vec<f64> = (1..=5).map(|i| s.points[i].md_global.mean).collect();
        rates.iter().cloned().fold(f64::MIN, f64::max)
            - rates.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(
        spread(div1) < 0.5 * spread(ud),
        "DIV-1 must flatten the classes"
    );
    // GF pushes every global class below DIV-1's level.
    for i in 1..=5 {
        assert!(
            gf.points[i].md_global.mean <= div1.points[i].md_global.mean + 0.01,
            "class {i}"
        );
    }
}

#[test]
fn fig15_strategies_compose_additively() {
    let fig = figures::fig15(Scale::Quick);
    let at = |i: usize, load: f64| fig.series[i].at_load(load).unwrap().md_global.mean;
    // At load 0.6: UD-UD worst, EQF-DIV1 best, singles in between.
    let (ud_ud, ud_div1, eqf_ud, eqf_div1) = (at(0, 0.6), at(1, 0.6), at(2, 0.6), at(3, 0.6));
    assert!(ud_div1 < ud_ud, "PSP alone helps");
    assert!(eqf_ud < ud_ud, "SSP alone helps");
    assert!(eqf_div1 < ud_div1 && eqf_div1 < eqf_ud, "together they win");
    // At low load, globals (huge slack U[6.25,25]) miss *less* than locals
    // under UD-UD — the paper's low-load observation.
    let p = fig.series[0].at_load(0.1).unwrap();
    assert!(p.md_global.mean <= p.md_local.mean + 0.005);
    // EQF-DIV1 keeps MD_global close to MD_local up to load 0.6.
    let p6 = fig.series[3].at_load(0.6).unwrap();
    assert!(
        p6.md_global.mean < p6.md_local.mean + 0.06,
        "global {} vs local {}",
        p6.md_global.mean,
        p6.md_local.mean
    );
}
