//! A deterministic reproduction of **Figure 8**: the queueing position of
//! a newly-arrived subtask `T_s` under DIV-100 versus GF (§6.1's
//! explanation of why GF beats DIV-x without hurting locals).
//!
//! Under DIV-100 the subtask's virtual deadline is pushed (almost) all the
//! way down to its arrival time, so it slots *between* the locals whose
//! deadlines have already (nearly) expired (`L_earlier`) and the rest
//! (`L_later`). Under GF it cuts ahead of `L_earlier` too. The paper's
//! three observations follow: only the already-doomed `L_earlier` tasks
//! wait longer, and `T_s` waits less.

use sda::prelude::*;
use sda::sched::{Policy, QueuedTask, ReadyQueue};

/// Builds the Figure 8 scene: locals with deadlines straddling "now", and
/// a subtask arriving now with window `w`, assigned by `psp`.
fn scene(psp: PspStrategy) -> Vec<&'static str> {
    let now = SimTime::from(100.0);
    let mut q: ReadyQueue<&'static str> = ReadyQueue::new(Policy::Edf);
    // L_earlier: locals whose deadlines are at or before now (they will
    // miss no matter what).
    q.push(QueuedTask::new(SimTime::from(98.0), 1.0, "L_earlier_1"));
    q.push(QueuedTask::new(SimTime::from(99.5), 1.0, "L_earlier_2"));
    // L_later: locals with deadlines comfortably after now.
    q.push(QueuedTask::new(SimTime::from(108.0), 1.0, "L_later_1"));
    q.push(QueuedTask::new(SimTime::from(115.0), 1.0, "L_later_2"));
    // T_s arrives now: global window of 12 time units, n = 4 subtasks.
    let dl = psp.assign(now, now + 12.0, 4);
    q.push(QueuedTask::new(dl, 1.0, "T_s"));
    q.drain_in_order().into_iter().map(|e| e.item).collect()
}

#[test]
fn div_100_slots_between_earlier_and_later_locals() {
    // DIV-100: dl(T_s) = 100 + 12/400 = 100.03 — just after arrival.
    let order = scene(PspStrategy::div(100.0));
    assert_eq!(
        order,
        vec![
            "L_earlier_1",
            "L_earlier_2",
            "T_s",
            "L_later_1",
            "L_later_2"
        ],
        "DIV-100 places T_s after the expired locals but before the rest"
    );
}

#[test]
fn gf_cuts_ahead_of_the_earlier_locals_too() {
    let order = scene(PspStrategy::gf());
    assert_eq!(
        order,
        vec![
            "T_s",
            "L_earlier_1",
            "L_earlier_2",
            "L_later_1",
            "L_later_2"
        ],
        "GF serves the subtask before every local"
    );
}

#[test]
fn ud_queues_behind_everything_with_a_comparable_deadline() {
    // UD: dl(T_s) = 112 — behind L_later_1 (108), ahead of L_later_2 (115).
    let order = scene(PspStrategy::Ud);
    assert_eq!(
        order,
        vec![
            "L_earlier_1",
            "L_earlier_2",
            "L_later_1",
            "T_s",
            "L_later_2"
        ]
    );
}

#[test]
fn switching_div_to_gf_only_delays_the_doomed_locals() {
    // The paper's three observations, as waiting-position arithmetic:
    // position of each local under DIV-100 vs GF.
    let div = scene(PspStrategy::div(100.0));
    let gf = scene(PspStrategy::gf());
    let pos = |order: &[&str], who: &str| order.iter().position(|&x| x == who).unwrap();
    // (1) L_later positions unchanged.
    assert_eq!(pos(&div, "L_later_1"), pos(&gf, "L_later_1"));
    assert_eq!(pos(&div, "L_later_2"), pos(&gf, "L_later_2"));
    // (2) L_earlier positions worsen (served later).
    assert!(pos(&gf, "L_earlier_1") > pos(&div, "L_earlier_1"));
    assert!(pos(&gf, "L_earlier_2") > pos(&div, "L_earlier_2"));
    // (3) T_s position improves (served earlier).
    assert!(pos(&gf, "T_s") < pos(&div, "T_s"));
}
