//! Integration tests of the §7.3 overload-management modes: accounting
//! identities and behavioural bounds that must hold under abortion.

use sda::prelude::*;

/// Single-replication run through the [`Runner`], with the replication's
/// seed given explicitly (shadows the deprecated free function).
fn run(cfg: &SimConfig, seed: u64) -> Result<RunResult, sda::sim::ConfigError> {
    Ok(Runner::new(cfg.clone())
        .with_seeds(vec![seed])
        .stop(StopRule::FixedReps(1))
        .execute()?
        .runs()[0]
        .clone())
}

fn cfg(load: f64, abort: AbortPolicy) -> SimConfig {
    SimConfig {
        abort,
        load,
        duration: 20_000.0,
        warmup: 200.0,
        ..SimConfig::baseline()
    }
}

#[test]
fn pm_abort_bounds_every_response_time() {
    // With process-manager abortion, no task lives past its deadline, so
    // the response time of any local is at most ex + slack <= ex + 5; the
    // histogram's p100 must respect a generous bound (ex is exponential,
    // so allow a deep tail: p99.9 of Exp(1) ~ 7, + 5 slack).
    let r = run(&cfg(0.8, AbortPolicy::ProcessManager), 1).unwrap();
    assert!(r.metrics.local_response.max() <= 30.0);
    // Without abortion, high load produces far longer responses.
    let r2 = run(&cfg(0.8, AbortPolicy::None), 1).unwrap();
    assert!(r2.metrics.local_response.max() > r.metrics.local_response.max());
}

#[test]
fn pm_abort_equals_miss_for_globals() {
    // Under PM abortion, a global misses iff it is aborted (completion
    // after the deadline is impossible): the counters must agree exactly
    // up to warm-up boundary effects.
    let r = run(&cfg(0.6, AbortPolicy::ProcessManager), 2).unwrap();
    let m = &r.metrics;
    let missed: u64 = m.global_md.values().map(|c| c.missed()).sum();
    let aborted = m.aborted_globals;
    // aborted counts warm-up tasks too; missed only counted ones.
    assert!(aborted >= missed);
    assert!(
        (aborted - missed) < 50,
        "aborted {aborted} vs missed {missed}"
    );
    assert!(missed > 100, "need a meaningful sample");
}

#[test]
fn work_is_conserved_across_abort_modes() {
    // Total busy time can only go down when tardy work is cancelled.
    let none: f64 = run(&cfg(0.8, AbortPolicy::None), 3)
        .unwrap()
        .busy
        .iter()
        .sum();
    let pm: f64 = run(&cfg(0.8, AbortPolicy::ProcessManager), 3)
        .unwrap()
        .busy
        .iter()
        .sum();
    assert!(pm < none, "abortion must shed load: {pm} vs {none}");
    // And the shed work is meaningful at this load.
    assert!(pm < 0.97 * none);
}

#[test]
fn local_abort_with_drop_resolves_every_global() {
    // With drop-on-abort, a global either completes or aborts; none hang.
    let cfg = SimConfig {
        strategy: SdaStrategy::ud_div1(),
        ..cfg(
            0.7,
            AbortPolicy::LocalScheduler {
                resubmit: ResubmitPolicy::Never,
            },
        )
    };
    let r = run(&cfg, 4).unwrap();
    let m = &r.metrics;
    assert!(m.aborted_globals > 0);
    assert!(m.global_count() > 1_000);
    // Subtask accounting: every counted global contributes at most 4
    // subtask records (fewer when unreleased leaves die with an abort —
    // impossible here since the shape is parallel-only, so exactly 4
    // minus the double-count protection).
    let ratio = m.subtask_md.total() as f64 / m.global_count() as f64;
    assert!((3.5..=4.5).contains(&ratio), "subtask/global ratio {ratio}");
}

#[test]
fn resubmission_only_happens_once_per_subtask() {
    let cfg = SimConfig {
        strategy: SdaStrategy {
            ssp: SspStrategy::Ud,
            psp: PspStrategy::div(8.0), // very tight: plenty of aborts
        },
        ..cfg(
            0.6,
            AbortPolicy::LocalScheduler {
                resubmit: ResubmitPolicy::OnceWithRealDeadline,
            },
        )
    };
    let r = run(&cfg, 5).unwrap();
    let m = &r.metrics;
    assert!(m.resubmissions > 0);
    // Each subtask can be locally aborted at most twice (once tight, once
    // after resubmission), and resubmitted at most once: aborts <= 2x
    // submissions, resubmissions <= aborts.
    assert!(m.resubmissions <= m.local_scheduler_aborts);
}

#[test]
fn abort_modes_do_not_change_the_workload() {
    // The generators draw from dedicated streams: the same seed must see
    // the same counted task population whatever the abort policy does.
    let a = run(&cfg(0.7, AbortPolicy::None), 6).unwrap();
    let b = run(&cfg(0.7, AbortPolicy::ProcessManager), 6).unwrap();
    let c = run(
        &cfg(
            0.7,
            AbortPolicy::LocalScheduler {
                resubmit: ResubmitPolicy::OnceWithRealDeadline,
            },
        ),
        6,
    )
    .unwrap();
    // Local and global totals agree between None and PM modes exactly
    // (every task still resolves by the deadline + horizon slack)...
    let count = |r: &RunResult| (r.metrics.local_count(), r.metrics.global_count());
    let (al, ag) = count(&a);
    let (bl, bg) = count(&b);
    let (cl, cg) = count(&c);
    // ...up to end-of-horizon censoring: allow a small boundary band.
    assert!((al as i64 - bl as i64).abs() < 100, "{al} vs {bl}");
    assert!((ag as i64 - bg as i64).abs() < 50, "{ag} vs {bg}");
    assert!((al as i64 - cl as i64).abs() < 100, "{al} vs {cl}");
    assert!((ag as i64 - cg as i64).abs() < 50, "{ag} vs {cg}");
}

#[test]
fn preemptive_and_abort_compose() {
    let cfg = SimConfig {
        preemptive: true,
        ..cfg(0.85, AbortPolicy::ProcessManager)
    };
    let r = run(&cfg, 7).unwrap();
    assert!(r.metrics.preemptions > 0);
    assert!(r.metrics.aborted_globals > 0);
    assert!(
        r.metrics.local_response.max() <= 35.0,
        "PM bound still holds"
    );
}
