//! Queueing-theoretic sanity checks: with a single node, only local tasks
//! (`frac_local = 1`), and a deadline-blind FCFS scheduler, the simulator
//! is an M/M/1 queue, for which everything is known in closed form.

use sda::prelude::*;

/// Single-replication run through the [`Runner`], with the replication's
/// seed given explicitly (shadows the deprecated free function).
fn run(cfg: &SimConfig, seed: u64) -> Result<RunResult, sda::sim::ConfigError> {
    Ok(Runner::new(cfg.clone())
        .with_seeds(vec![seed])
        .stop(StopRule::FixedReps(1))
        .execute()?
        .runs()[0]
        .clone())
}

use sda::sched::Policy;

fn mm1_cfg(load: f64) -> SimConfig {
    SimConfig {
        nodes: 1,
        frac_local: 1.0,
        scheduler: Policy::Fcfs,
        duration: 400_000.0,
        warmup: 4_000.0,
        ..SimConfig::baseline()
    }
    .with_load(load)
}

#[test]
fn mm1_mean_response_time_matches_theory() {
    for load in [0.3, 0.5, 0.7] {
        let r = run(&mm1_cfg(load), 11).expect("valid config");
        let theory = sda::core::analysis::mm1::mean_response(load);
        let measured = r.metrics.local_response.mean();
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.05,
            "load {load}: E[T] measured {measured:.3} vs theory {theory:.3}"
        );
    }
}

#[test]
fn mm1_response_median_matches_exponential_sojourn() {
    // FCFS M/M/1 sojourn time is Exp(mu - lambda): the median is
    // ln(2)/(1 - rho). Exercises the response-time histogram quantiles.
    let load = 0.5;
    let r = run(&mm1_cfg(load), 15).expect("valid config");
    let theory = 2.0_f64.ln() / (1.0 - load);
    let measured = r.metrics.local_response_quantile(0.5);
    assert!(
        (measured - theory).abs() < 0.15,
        "median measured {measured:.3} vs theory {theory:.3}"
    );
}

#[test]
fn mm1_utilization_equals_load() {
    for load in [0.2, 0.6, 0.9] {
        let r = run(&mm1_cfg(load), 12).expect("valid config");
        assert!(
            (r.utilization() - load).abs() < 0.03,
            "load {load}: utilization {}",
            r.utilization()
        );
    }
}

#[test]
fn mm1_miss_rate_matches_waiting_time_tail() {
    // A task with service x and slack s has deadline ar + x + s and
    // finishes at ar + W + x (W = FCFS waiting time), so it misses iff
    // W > s — its own service time cancels. The closed form lives in
    // sda::core::analysis::mm1.
    let load = 0.5;
    let r = run(&mm1_cfg(load), 13).expect("valid config");
    let p_miss = sda::core::analysis::mm1::miss_probability_uniform_slack(load, 1.25, 5.0);
    let measured = r.metrics.md_local();
    assert!(
        (measured - p_miss).abs() < 0.01,
        "MD measured {measured:.4} vs theory {p_miss:.4}"
    );
}

#[test]
fn edf_beats_fcfs_on_miss_rate_at_equal_load() {
    // EDF is deadline-cognizant; at the same load it must miss fewer
    // deadlines than FCFS (this is why the paper's nodes run EDF).
    let fcfs = run(&mm1_cfg(0.7), 14).expect("valid config");
    let edf_cfg = SimConfig {
        scheduler: Policy::Edf,
        ..mm1_cfg(0.7)
    };
    let edf = run(&edf_cfg, 14).expect("valid config");
    assert!(
        edf.metrics.md_local() < fcfs.metrics.md_local(),
        "EDF {} vs FCFS {}",
        edf.metrics.md_local(),
        fcfs.metrics.md_local()
    );
}
