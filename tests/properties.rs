//! Cross-crate property-based tests (proptest) of the core invariants:
//! spec parsing, strategy algebra, the SDA decomposition, and the
//! simulator's accounting identities.

use proptest::prelude::*;

use sda::prelude::*;

/// Single-replication run through the [`Runner`], with the replication's
/// seed given explicitly (shadows the deprecated free function).
fn run(cfg: &SimConfig, seed: u64) -> Result<RunResult, sda::sim::ConfigError> {
    Ok(Runner::new(cfg.clone())
        .with_seeds(vec![seed])
        .stop(StopRule::FixedReps(1))
        .execute()?
        .runs()[0]
        .clone())
}

use sda::simcore::SimTime as T;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A random serial-parallel spec whose compositions all have ≥ 2 children
/// (so Display round-trips through the parser unambiguously).
fn arb_spec() -> impl Strategy<Value = TaskSpec> {
    let leaf = Just(TaskSpec::Simple);
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..5).prop_map(TaskSpec::serial),
            prop::collection::vec(inner, 2..5).prop_map(TaskSpec::parallel),
        ]
    })
}

proptest! {
    // -----------------------------------------------------------------
    // Parser / printer
    // -----------------------------------------------------------------

    #[test]
    fn spec_display_round_trips(spec in arb_spec()) {
        let printed = spec.to_string();
        let reparsed = parse_spec(&printed).expect("printer output must parse");
        prop_assert_eq!(reparsed, spec);
    }

    #[test]
    fn normalization_preserves_counts_and_critical_path(spec in arb_spec()) {
        let norm = spec.normalized();
        prop_assert_eq!(norm.simple_count(), spec.simple_count());
        let ex: Vec<f64> = (0..spec.simple_count()).map(|i| 0.5 + i as f64 * 0.3).collect();
        let a = spec.critical_path(&ex);
        let b = norm.critical_path(&ex);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn critical_path_between_max_and_sum(spec in arb_spec()) {
        let n = spec.simple_count();
        let ex: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64).collect();
        let cp = spec.critical_path(&ex);
        let sum: f64 = ex.iter().sum();
        let max = ex.iter().cloned().fold(0.0, f64::max);
        prop_assert!(cp <= sum + 1e-9, "cp {} > sum {}", cp, sum);
        prop_assert!(cp >= max - 1e-9, "cp {} < max {}", cp, max);
    }

    // -----------------------------------------------------------------
    // PSP strategy algebra
    // -----------------------------------------------------------------

    #[test]
    fn div_x_is_monotone_and_bounded(
        ar in 0.0f64..1000.0,
        window in 0.01f64..100.0,
        n in 1usize..12,
        x in 0.1f64..50.0,
    ) {
        let ar_t = T::from(ar);
        let dl = T::from(ar + window);
        let got = PspStrategy::div(x).assign(ar_t, dl, n);
        // Always strictly after arrival; and whenever the divisor n*x is
        // at least 1 (every configuration the paper uses), never after
        // the real deadline. (n*x < 1 deliberately *extends* the window:
        // Equation 1 is a division, and dividing by less than one is a
        // de-boost.)
        prop_assert!(got > ar_t);
        if n as f64 * x >= 1.0 {
            prop_assert!(got <= dl + 1e-9);
        }
        // Monotone: larger x or larger n gives an earlier deadline.
        let tighter = PspStrategy::div(x * 2.0).assign(ar_t, dl, n);
        prop_assert!(tighter <= got);
        let wider_n = PspStrategy::div(x).assign(ar_t, dl, n + 1);
        prop_assert!(wider_n <= got);
    }

    #[test]
    fn gf_preserves_relative_order(
        dl_a in 0.0f64..1000.0,
        gap in 0.001f64..100.0,
    ) {
        let gf = PspStrategy::gf();
        let a = gf.assign(T::ZERO, T::from(dl_a), 3);
        let b = gf.assign(T::ZERO, T::from(dl_a + gap), 3);
        prop_assert!(a < b);
    }

    // -----------------------------------------------------------------
    // SSP strategy algebra
    // -----------------------------------------------------------------

    #[test]
    fn ssp_last_stage_always_gets_the_real_deadline(
        now in 0.0f64..100.0,
        window in -10.0f64..100.0,
        pex in 0.0f64..20.0,
    ) {
        let dl = T::from(now + window);
        for ssp in SspStrategy::ALL {
            let got = ssp.assign(T::from(now), dl, &[pex]);
            prop_assert!((got.value() - dl.value()).abs() < 1e-9, "{}", ssp);
        }
    }

    #[test]
    fn ssp_never_exceeds_deadline_with_nonnegative_slack(
        now in 0.0f64..100.0,
        pex in prop::collection::vec(0.01f64..5.0, 1..8),
        extra_slack in 0.0f64..50.0,
    ) {
        let total: f64 = pex.iter().sum();
        let dl = T::from(now + total + extra_slack);
        for ssp in SspStrategy::ALL {
            let got = ssp.assign(T::from(now), dl, &pex);
            prop_assert!(got <= dl + 1e-9, "{} exceeded the deadline", ssp);
            // And never before "now + own pex" minus nothing — i.e. the
            // stage always gets at least its predicted execution time
            // (slack shares are non-negative here).
            prop_assert!(got.value() >= now + pex[0] - 1e-9, "{} starved the stage", ssp);
        }
    }

    #[test]
    fn eqf_flexibility_is_equalized(
        now in 0.0f64..50.0,
        pex in prop::collection::vec(0.1f64..5.0, 2..6),
        extra_slack in 0.1f64..40.0,
    ) {
        // EQF's defining property: the slack granted to stage 1 over its
        // pex, divided by pex, equals total slack over total pex.
        let total: f64 = pex.iter().sum();
        let dl = T::from(now + total + extra_slack);
        let got = SspStrategy::Eqf.assign(T::from(now), dl, &pex);
        let stage_slack = got.value() - now - pex[0];
        let stage_flex = stage_slack / pex[0];
        let total_flex = extra_slack / total;
        prop_assert!((stage_flex - total_flex).abs() < 1e-6,
            "stage flexibility {} vs total {}", stage_flex, total_flex);
    }

    // -----------------------------------------------------------------
    // The SDA decomposition (Figure 13)
    // -----------------------------------------------------------------

    #[test]
    fn decomposition_releases_every_leaf_exactly_once(
        spec in arb_spec(),
        seed in 0u64..1000,
    ) {
        let n = spec.simple_count();
        let mut d = Decomposition::new(&spec, vec![1.0; n]);
        let strategy = SdaStrategy::eqf_div1();
        let mut rng = sda::simcore::rng::Rng::seed_from(seed);
        let mut pending = d.start(T::ZERO, T::from(100.0), &strategy);
        let mut released = vec![false; n];
        let mut now = 0.0;
        while !pending.is_empty() {
            // Complete pending releases in a random order.
            let pick = rng.next_below(pending.len() as u64) as usize;
            let r = pending.swap_remove(pick);
            prop_assert!(!released[r.leaf], "leaf {} released twice", r.leaf);
            released[r.leaf] = true;
            now += 0.25;
            pending.extend(d.complete_leaf(r.leaf, T::from(now), &strategy));
        }
        prop_assert!(d.is_finished());
        prop_assert!(released.iter().all(|&r| r), "every leaf must be released");
    }

    #[test]
    fn ud_ud_decomposition_never_tightens(
        spec in arb_spec(),
    ) {
        let n = spec.simple_count();
        let mut d = Decomposition::new(&spec, vec![1.0; n]);
        let strategy = SdaStrategy::ud_ud();
        let dl = T::from(42.0);
        let mut pending = d.start(T::ZERO, dl, &strategy);
        let mut now = 0.0;
        while let Some(r) = pending.pop() {
            prop_assert_eq!(r.deadline, dl);
            now += 0.1;
            pending.extend(d.complete_leaf(r.leaf, T::from(now), &strategy));
        }
    }

    #[test]
    fn decomposition_virtual_deadlines_never_exceed_end_to_end(
        spec in arb_spec(),
        pex_seed in 0u64..100,
    ) {
        // With non-negative slack at start and on-time completions, no
        // virtual deadline can exceed the end-to-end deadline under any
        // Table 2 strategy.
        let n = spec.simple_count();
        let mut rng = sda::simcore::rng::Rng::seed_from(pex_seed);
        let pex: Vec<f64> = (0..n).map(|_| 0.1 + rng.next_f64()).collect();
        let total: f64 = pex.iter().sum();
        let dl = T::from(total * 2.0 + 5.0);
        for strategy in SdaStrategy::table2() {
            let mut d = Decomposition::new(&spec, pex.clone());
            let mut pending = d.start(T::ZERO, dl, &strategy);
            let mut now = 0.0;
            while let Some(r) = pending.pop() {
                // The last-stage identity now + pex + (dl - now - pex) can
                // land one ulp above dl; allow fp tolerance.
                prop_assert!(
                    r.deadline.value() <= dl.value() + 1e-9,
                    "{} exceeded dl: {} > {}",
                    strategy,
                    r.deadline,
                    dl
                );
                // Finish each leaf quickly (before its virtual deadline).
                now += 0.01;
                pending.extend(d.complete_leaf(r.leaf, T::from(now), &strategy));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Simulator accounting identities (non-proptest but cross-crate)
// ---------------------------------------------------------------------

#[test]
fn simulator_conserves_tasks_across_strategies() {
    // The workload draws are strategy-independent (dedicated RNG streams),
    // so two runs with the same seed and different strategies must see the
    // same number of counted tasks of each class.
    let cfg = SimConfig::baseline().with_duration(20_000.0);
    let a = run(&cfg, 99).unwrap();
    let b = run(&cfg.clone().with_strategy(SdaStrategy::ud_div1()), 99).unwrap();
    assert_eq!(a.metrics.local_count(), b.metrics.local_count());
    assert_eq!(a.metrics.global_count(), b.metrics.global_count());
    assert_eq!(a.metrics.subtask_md.total(), b.metrics.subtask_md.total());
    // And with the same strategy, the full counters are identical.
    let c = run(&cfg, 99).unwrap();
    assert_eq!(a.metrics.local_md, c.metrics.local_md);
    assert_eq!(a.metrics.md_global(), c.metrics.md_global());
    assert_eq!(a.events, c.events);
}

#[test]
fn subtask_records_are_n_per_global_without_abortion() {
    let cfg = SimConfig::baseline().with_duration(20_000.0);
    let r = run(&cfg, 5).unwrap();
    // Without abortion every global eventually completes all 4 subtasks;
    // boundary effects (tasks straddling warm-up/horizon) keep the ratio
    // only approximately 4.
    let ratio = r.metrics.subtask_md.total() as f64 / r.metrics.global_count() as f64;
    assert!((ratio - 4.0).abs() < 0.1, "subtask/global ratio {ratio}");
}
