//! Fuzzing the simulator: random valid configurations must run to their
//! horizon without panicking, and the accounting invariants must hold
//! whatever combination of strategy, shape, scheduler, abortion,
//! placement, speeds, and burstiness is active.

use proptest::prelude::*;

use sda::prelude::*;

/// Single-replication run through the [`Runner`], with the replication's
/// seed given explicitly (shadows the deprecated free function).
fn run(cfg: &SimConfig, seed: u64) -> Result<RunResult, sda::sim::ConfigError> {
    Ok(Runner::new(cfg.clone())
        .with_seeds(vec![seed])
        .stop(StopRule::FixedReps(1))
        .execute()?
        .runs()[0]
        .clone())
}

use sda::sched::Policy;
use sda::sim::{Burst, Placement, ServiceShape};

fn arb_strategy() -> impl Strategy<Value = SdaStrategy> {
    let ssp = prop_oneof![
        Just(SspStrategy::Ud),
        Just(SspStrategy::Ed),
        Just(SspStrategy::Eqs),
        Just(SspStrategy::Eqf),
    ];
    let psp = prop_oneof![
        Just(PspStrategy::Ud),
        (0.25f64..8.0).prop_map(PspStrategy::div),
        Just(PspStrategy::gf()),
    ];
    (ssp, psp).prop_map(|(ssp, psp)| SdaStrategy { ssp, psp })
}

fn arb_shape() -> impl Strategy<Value = GlobalShape> {
    prop_oneof![
        (1usize..=4).prop_map(|n| GlobalShape::ParallelFixed { n }),
        (1usize..=3, 0usize..=3)
            .prop_map(|(lo, extra)| GlobalShape::ParallelUniform { lo, hi: lo + extra }),
        Just(GlobalShape::figure14()),
        Just(GlobalShape::Spec(
            sda::model::parse_spec("[a [b || c] [d e]]").unwrap()
        )),
    ]
}

fn arb_abort() -> impl Strategy<Value = AbortPolicy> {
    prop_oneof![
        Just(AbortPolicy::None),
        Just(AbortPolicy::ProcessManager),
        Just(AbortPolicy::LocalScheduler {
            resubmit: ResubmitPolicy::OnceWithRealDeadline
        }),
        Just(AbortPolicy::LocalScheduler {
            resubmit: ResubmitPolicy::Never
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        arb_strategy(),
        arb_shape(),
        arb_abort(),
        0.05f64..0.9, // load
        0.0f64..=1.0, // frac_local
        prop_oneof![
            Just(Policy::Edf),
            Just(Policy::Fcfs),
            Just(Policy::Sjf),
            Just(Policy::Llf)
        ],
        any::<bool>(), // preemptive (EDF only)
        prop_oneof![
            Just(ServiceShape::Exponential),
            Just(ServiceShape::Deterministic),
            Just(ServiceShape::UniformSpread)
        ],
        prop_oneof![
            Just(Placement::RandomDistinct),
            Just(Placement::LeastLoaded)
        ],
        proptest::option::of((10.0f64..200.0, 0.1f64..0.5).prop_map(|(period, f)| Burst {
            period,
            on_fraction: f,
            boost: 1.0 + 0.8 * (1.0 / f - 1.0), // safely inside [1, 1/f)
        })),
        prop_oneof![
            Just(Vec::new()),
            Just(vec![2.0, 2.0, 1.0, 1.0, 0.5, 0.5]),
            Just(vec![1.75, 1.75, 1.75, 0.25, 0.25, 0.25]),
        ],
    )
        .prop_map(
            |(
                strategy,
                shape,
                abort,
                load,
                frac_local,
                scheduler,
                preemptive,
                service_shape,
                placement,
                burst,
                node_speeds,
            )| {
                SimConfig {
                    strategy,
                    shape,
                    abort,
                    load,
                    frac_local,
                    scheduler,
                    preemptive: preemptive && scheduler == Policy::Edf,
                    service_shape,
                    placement,
                    burst,
                    node_speeds,
                    duration: 600.0,
                    warmup: 10.0,
                    ..SimConfig::baseline()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_valid_config_runs_and_accounts_consistently(
        cfg in arb_config(),
        seed in 0u64..1_000,
    ) {
        // Some generated combos are legitimately invalid (e.g. fan-out
        // wider than nodes with globals present): they must be *rejected*,
        // never panic.
        let Ok(result) = run(&cfg, seed) else { return Ok(()) };
        let m = &result.metrics;

        // Rates are probabilities.
        for rate in [m.md_local(), m.md_subtask(), m.md_global(), m.missed_work_fraction()] {
            prop_assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        }
        // Counters are consistent.
        prop_assert!(m.local_md.missed() <= m.local_md.total());
        prop_assert!(m.subtask_md.missed() <= m.subtask_md.total());
        prop_assert!(m.total_missed_count() <= m.local_count() + m.global_count());
        // Busy time per node never exceeds the horizon.
        for (i, &busy) in result.busy.iter().enumerate() {
            prop_assert!(busy <= result.duration * 1.0001, "node {i} busy {busy}");
            prop_assert!(busy >= 0.0);
        }
        // Queue lengths are non-negative and finite.
        for &q in &result.mean_queue_len {
            prop_assert!(q.is_finite() && q >= 0.0);
        }
        // Response times can't be negative.
        prop_assert!(m.local_response.min() >= 0.0 || m.local_response.count() == 0);
        prop_assert!(m.global_response.min() >= 0.0 || m.global_response.count() == 0);
        // Determinism: the same config and seed reproduce the counters.
        let again = run(&cfg, seed).expect("validated above");
        prop_assert_eq!(again.metrics.local_md, m.local_md);
        prop_assert_eq!(again.events, result.events);
    }
}
