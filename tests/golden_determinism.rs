//! Golden-file determinism pins for the hot-path rework: the pooled,
//! template-based arrival path must produce **byte-identical** output to
//! the allocating implementation it replaced. The fixtures under
//! `tests/golden/` were generated from the pre-rework build; this test
//! re-runs the same small configurations and compares the rendered
//! `stats.json` and the replication-0 trace JSONL byte for byte.
//!
//! Throughput numbers (wall-clock derived) are deliberately excluded:
//! they are nondeterministic even between two runs of the same binary.
//! Everything simulation-derived is compared exactly.
//!
//! To regenerate after an *intentional* output-format change:
//!
//! ```text
//! SDA_REGEN_GOLDEN=1 cargo test --test golden_determinism
//! ```

use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use sda::prelude::*;
use sda::sim::trace::{JsonlSink, SharedSink};

/// A writer handing every byte to a shared buffer, so the test can read
/// what the sink wrote after the runner consumed it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs `cfg` under the Runner exactly as the CLI would (3 replications,
/// 2 worker threads, trace on replication 0) and returns
/// (deterministic stats.json bytes, trace JSONL bytes).
fn run_case(cfg: SimConfig, seed: u64) -> (String, String) {
    let buf = SharedBuf::default();
    let sink = SharedSink::new(Box::new(JsonlSink::new(buf.clone())));
    let multi = Runner::new(cfg)
        .seed(seed)
        .jobs(2)
        .stop(StopRule::FixedReps(3))
        .trace(sink)
        .execute()
        .expect("golden configs validate");
    let stats = multi.stats().to_json();
    let bytes = buf.0.lock().unwrap().clone();
    let trace = String::from_utf8(bytes).expect("utf-8 jsonl");
    (stats, trace)
}

/// The Figure-5 shape with the paper's winning strategy and
/// process-manager abortion: exercises parallel decomposition, pooled
/// slots, placement, and the PM teardown path.
fn baseline_case() -> (String, String) {
    let cfg = SimConfig {
        duration: 2_000.0,
        warmup: 100.0,
        strategy: SdaStrategy::eqf_div1(),
        abort: AbortPolicy::ProcessManager,
        ..SimConfig::baseline()
    };
    run_case(cfg, 777)
}

/// The §8 serial-parallel shape (Figure 14 task graph) with
/// local-scheduler abortion and resubmission: exercises serial-stage
/// activation (EQF prefix sums), in-service deadline timers, and the
/// resubmission path.
fn section8_case() -> (String, String) {
    let cfg = SimConfig {
        duration: 2_000.0,
        warmup: 100.0,
        strategy: SdaStrategy::eqf_div1(),
        abort: AbortPolicy::LocalScheduler {
            resubmit: ResubmitPolicy::OnceWithRealDeadline,
        },
        ..SimConfig::section8()
    };
    run_case(cfg, 4242)
}

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_or_regen(name: &str, actual: &str) {
    let path = fixture(name);
    if std::env::var_os("SDA_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()));
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden fixture: same seed must produce \
         byte-identical output (regenerate only for intentional format changes)"
    );
}

#[test]
fn baseline_stats_and_trace_match_golden() {
    let (stats, trace) = baseline_case();
    assert!(!trace.is_empty(), "the run must actually trace");
    check_or_regen("baseline_stats.json", &stats);
    check_or_regen("baseline_trace.jsonl", &trace);
}

#[test]
fn section8_stats_and_trace_match_golden() {
    let (stats, trace) = section8_case();
    assert!(!trace.is_empty(), "the run must actually trace");
    check_or_regen("section8_stats.json", &stats);
    check_or_regen("section8_trace.jsonl", &trace);
}
