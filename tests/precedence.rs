//! End-to-end precedence tests: the process manager must never submit a
//! serial successor before its predecessor completes, verified against
//! the live simulator through the trace facility.

use std::collections::HashMap;

use sda::prelude::*;
use sda::sim::trace::RingBufferSink;
use sda::sim::{Simulation, TraceEvent};
use sda::simcore::Engine;

fn traced_run(cfg: SimConfig, seed: u64, horizon: f64) -> Vec<(f64, TraceEvent)> {
    let (sink, handle) = RingBufferSink::with_handle(usize::MAX);
    let mut sim = Simulation::new(cfg, seed).expect("valid config");
    sim.set_sink(Box::new(sink));
    let mut engine = Engine::new();
    sim.prime(&mut engine);
    engine.run_until(&mut sim, SimTime::from(horizon));
    handle
        .records()
        .into_iter()
        .map(|r| (r.time.value(), r.event))
        .collect()
}

#[test]
fn serial_stages_submit_only_after_predecessors_complete() {
    // Pure 4-stage pipelines: leaf k of a global may only be submitted
    // after leaf k-1's node finished serving it. We check the weaker but
    // sufficient property observable from the trace: submissions of one
    // global's leaves are strictly ordered by leaf index in time.
    let cfg = SimConfig {
        shape: GlobalShape::Spec(sda::model::TaskSpec::pipeline(4)),
        global_slack: sda::simcore::dist::Uniform::new(5.0, 20.0),
        duration: 3_000.0,
        warmup: 0.0,
        ..SimConfig::baseline()
    }
    .with_strategy(SdaStrategy::eqf_ud());
    let log = traced_run(cfg, 7, 3_000.0);

    // Track, per slot *incarnation*, the submissions seen so far. A slot
    // is re-incarnated after GlobalFinished.
    let mut incarnation: HashMap<usize, usize> = HashMap::new();
    let mut last_leaf: HashMap<(usize, usize), (usize, f64)> = HashMap::new();
    let mut checked = 0;
    for (t, ev) in log.iter() {
        match ev {
            TraceEvent::SubtaskSubmitted { slot, leaf, .. } => {
                let inc = *incarnation.entry(*slot).or_insert(0);
                if let Some((prev_leaf, prev_t)) = last_leaf.get(&(*slot, inc)) {
                    assert_eq!(
                        *leaf,
                        prev_leaf + 1,
                        "pipeline leaves must release in order"
                    );
                    assert!(*t >= *prev_t, "submission times must advance");
                    checked += 1;
                }
                last_leaf.insert((*slot, inc), (*leaf, *t));
            }
            TraceEvent::GlobalFinished { slot, .. } => {
                *incarnation.entry(*slot).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    assert!(checked > 500, "exercised {checked} stage transitions");
}

#[test]
fn parallel_subtasks_all_submit_at_arrival() {
    // Baseline shape: all 4 subtasks are submitted at the instant the
    // global arrives (no precedence among parallel siblings).
    let cfg = SimConfig {
        duration: 1_000.0,
        warmup: 0.0,
        ..SimConfig::baseline()
    };
    let log = traced_run(cfg, 8, 1_000.0);
    let mut arrival_time: HashMap<usize, f64> = HashMap::new();
    let mut submissions = 0;
    for (t, ev) in log.iter() {
        match ev {
            TraceEvent::GlobalArrived { slot, .. } => {
                arrival_time.insert(*slot, *t);
            }
            TraceEvent::SubtaskSubmitted { slot, .. } => {
                let arrived = arrival_time[slot];
                assert_eq!(*t, arrived, "parallel subtasks submit at arrival");
                submissions += 1;
            }
            TraceEvent::GlobalFinished { slot, .. } => {
                arrival_time.remove(slot);
            }
            _ => {}
        }
    }
    assert!(submissions > 400);
}

#[test]
fn virtual_deadlines_in_trace_match_strategy() {
    // Under UD-DIV1 on the baseline shape, every submitted virtual
    // deadline must be arrival + window/4.
    let cfg = SimConfig {
        duration: 500.0,
        warmup: 0.0,
        ..SimConfig::baseline()
    }
    .with_strategy(SdaStrategy::ud_div1());
    let log = traced_run(cfg, 9, 500.0);
    let mut deadline: HashMap<usize, (f64, f64)> = HashMap::new(); // slot -> (ar, dl)
    let mut checked = 0;
    for (t, ev) in log.iter() {
        match ev {
            TraceEvent::GlobalArrived {
                slot, deadline: dl, ..
            } => {
                deadline.insert(*slot, (*t, dl.value()));
            }
            TraceEvent::SubtaskSubmitted {
                slot,
                virtual_deadline,
                ..
            } => {
                let (ar, dl) = deadline[slot];
                let expect = ar + (dl - ar) / 4.0;
                assert!(
                    (virtual_deadline.value() - expect).abs() < 1e-9,
                    "DIV-1 deadline mismatch: got {} expected {expect}",
                    virtual_deadline.value()
                );
                checked += 1;
            }
            TraceEvent::GlobalFinished { slot, .. } => {
                deadline.remove(slot);
            }
            _ => {}
        }
    }
    assert!(checked > 200);
}
