//! # sda — subtask deadline assignment for distributed soft real-time tasks
//!
//! A from-scratch Rust implementation and full experimental reproduction of
//!
//! > Ben Kao and Hector Garcia-Molina. *Subtask Deadline Assignment for
//! > Complex Distributed Soft Real-Time Tasks.* ICDCS 1994.
//!
//! A complex distributed task (`[T1 [T2 ‖ T3 ‖ T4] T5]`) has one
//! end-to-end deadline, but its subtasks are scheduled by *independent*
//! per-node schedulers that only see whatever deadline each subtask is
//! submitted with. Submitting the raw end-to-end deadline (**UD**) makes
//! parallel global tasks miss far more often than local tasks — if one
//! subtask is late, the whole task is late. This crate implements the
//! paper's on-line remedies and everything needed to evaluate them:
//!
//! * [`core`] — the deadline-assignment strategies: **DIV-x**
//!   and **GF** for parallel subtasks, **EQF** (plus ED/EQS) for serial
//!   stages, and the recursive SDA algorithm for arbitrary serial-parallel
//!   graphs;
//! * [`model`] — the serial-parallel task model with a parser
//!   for the paper's bracket notation;
//! * [`sched`] — non-preemptive EDF ready queues (plus
//!   FCFS/SJF baselines);
//! * [`sim`] — the distributed-system simulator (nodes, process
//!   manager, Poisson workloads, abortion policies, metrics);
//! * [`simcore`] — the deterministic discrete-event engine
//!   underneath;
//! * [`experiments`] — a harness regenerating every
//!   table and figure in the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use sda::core::{Decomposition, SdaStrategy};
//! use sda::model::parse_spec;
//! use sda::simcore::SimTime;
//!
//! // A stock-trading pipeline: gather from 3 feeds in parallel, then
//! // analyse, then act. End-to-end deadline: 12 time units.
//! let spec = parse_spec("[[feed1 || feed2 || feed3] analyse act]")?;
//! let pex = vec![1.0, 1.0, 1.0, 2.0, 0.5]; // predicted execution times
//! let mut decomp = Decomposition::new(&spec, pex);
//!
//! // EQF for the serial stages, DIV-1 for the parallel fan-out.
//! let strategy = SdaStrategy::eqf_div1();
//! let releases = decomp.start(SimTime::ZERO, SimTime::from(12.0), &strategy);
//!
//! // The three feeds are released immediately, with virtual deadlines
//! // well before the end-to-end deadline:
//! assert_eq!(releases.len(), 3);
//! assert!(releases.iter().all(|r| r.deadline < SimTime::from(12.0)));
//! # Ok::<(), sda::model::ParseSpecError>(())
//! ```
//!
//! ## Reproducing the paper
//!
//! ```bash
//! cargo run --release -p sda-experiments --bin repro              # everything
//! cargo run --release -p sda-experiments --bin fig7 -- --scale paper
//! cargo run --release -p sda-experiments --bin checkpoints
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]

// The experiment-running surface, re-exported at the root so one
// `use sda::{Runner, StopRule};` is enough to drive simulations.
pub use sda_sim::{MultiRun, Runner, SimConfig, StatsReport, StopRule};

pub use sda_core as core;
pub use sda_experiments as experiments;
pub use sda_model as model;
pub use sda_sched as sched;
pub use sda_sim as sim;
pub use sda_simcore as simcore;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use sda_core::{
        DecompTemplate, Decomposition, EstimationModel, PspStrategy, Release, SdaStrategy,
        SspStrategy,
    };
    pub use sda_model::{parse_spec, Attrs, NodeId, TaskClass, TaskId, TaskSpec};
    pub use sda_sim::{
        seeds, AbortPolicy, GlobalShape, Metrics, MultiRun, ResubmitPolicy, RunResult, Runner,
        SimConfig, StatsReport, StopRule,
    };
    pub use sda_simcore::SimTime;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let cfg = SimConfig::baseline();
        assert_eq!(cfg.nodes, 6);
        let strategy = SdaStrategy::eqf_div1();
        assert_eq!(strategy.to_string(), "EQF-DIV1");
        let spec = parse_spec("[a || b]").unwrap();
        assert_eq!(spec, TaskSpec::parallel_simple(2));
    }
}
